/**
 * @file
 * Tier-2 inlining and call-inline-cache edge cases: profile gating,
 * recursion, variadics, budget rejection, function pointers (monomorphic
 * and megamorphic), and — most important — bug attribution: a bug raised
 * inside a spliced callee must be reported against the *callee*, exactly
 * as the tier-1 interpreter reports it. "The compiler cannot optimize a
 * bug away" extends to "nor mis-attribute it".
 */

#include "test_util.h"

#include "interp/tier2.h"

namespace sulong
{
namespace
{

/** Eagerly-compiling config: every function tier-2 compiles on its
 *  first invocation and every eligible call site is spliced. */
ToolConfig
eagerInlineConfig()
{
    ToolConfig config = ToolConfig::make(ToolKind::safeSulong);
    config.managed.compileThreshold = 0;
    config.managed.inlineSiteMin = 0;
    return config;
}

/** Run under @p config and hand back (result, inlined-site count). */
std::pair<ExecutionResult, unsigned>
runCounting(const std::string &src, const ToolConfig &config,
            const std::vector<std::string> &args = {})
{
    PreparedProgram prepared = prepareProgram(src, config);
    EXPECT_TRUE(prepared.ok()) << prepared.compileErrors;
    if (!prepared.ok())
        return {ExecutionResult{}, 0};
    ExecutionResult result = prepared.run(args);
    auto *engine = dynamic_cast<ManagedEngine *>(prepared.engine.get());
    EXPECT_NE(engine, nullptr);
    return {std::move(result), engine ? engine->inlinedSites() : 0};
}

TEST(InlineTest, SmallHotCalleeIsSpliced)
{
    const char *src = R"(
        static int add3(int a, int b, int c) { return a + b + c; }
        int main(void) {
            int s = 0;
            for (int i = 0; i < 100; i++)
                s += add3(i, i * 2, 1);
            printf("%d\n", s);
            return 0;
        }
    )";
    auto [result, inlined] = runCounting(src, eagerInlineConfig());
    ASSERT_TRUE(result.ok()) << result.bug.toString();
    EXPECT_EQ(result.output, "14950\n");
    EXPECT_GT(inlined, 0u);

    // Same program, inlining disabled: identical output, zero splices.
    ToolConfig off = eagerInlineConfig();
    off.managed.enableInlining = false;
    auto [plain, plain_inlined] = runCounting(src, off);
    ASSERT_TRUE(plain.ok()) << plain.bug.toString();
    EXPECT_EQ(plain.output, result.output);
    EXPECT_EQ(plain_inlined, 0u);
}

TEST(InlineTest, ProfileGatingOnlyInlinesHotSites)
{
    // caller_hot executes its add() site on every invocation; in
    // caller_cold the site is dead. With the default auto site
    // threshold only the hot site is spliced.
    const char *src = R"(
        static int add(int a, int b) { return a + b; }
        static int caller_hot(int i) { return add(i, 1); }
        static int caller_cold(int i) {
            if (i < -1000) return add(i, 2);
            return i;
        }
        int main(void) {
            int s = 0;
            for (int i = 0; i < 300; i++) {
                s += caller_hot(i);
                s += caller_cold(i);
            }
            return s % 126;
        }
    )";
    ToolConfig config = ToolConfig::make(ToolKind::safeSulong);
    config.managed.compileThreshold = 50;
    config.managed.inlineSiteMin = -1; // auto: half the threshold
    auto [result, inlined] = runCounting(src, config);
    ASSERT_TRUE(result.ok()) << result.bug.toString();
    EXPECT_EQ(inlined, 1u);
    // Ground truth: sum of (2i + 1) for i in [0, 300).
    EXPECT_EQ(result.exitCode, (300 * 300) % 126);
}

TEST(InlineTest, RecursiveCalleeStaysCorrect)
{
    // fib is recursive: the self-call can never be spliced into its own
    // splice (the compiler rejects recursion), but execution through
    // whatever mix of inlined/direct-call paths results must match.
    const char *src = R"(
        static int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main(void) { return fib(15); }
    )";
    auto [result, inlined] = runCounting(src, eagerInlineConfig());
    ASSERT_TRUE(result.ok()) << result.bug.toString();
    EXPECT_EQ(result.exitCode, 610);
    (void)inlined; // fib spliced into main is fine; self-splice is not.
}

TEST(InlineTest, VariadicCalleeIsNeverInlined)
{
    const char *src = R"(
        static int sum(int n, ...) {
            va_list ap;
            va_start(ap, n);
            int s = 0;
            for (int i = 0; i < n; i++)
                s += va_arg(ap, int);
            va_end(ap);
            return s;
        }
        int main(void) {
            int s = 0;
            for (int i = 0; i < 60; i++)
                s += sum(3, i, 2 * i, 1);
            return s % 126;
        }
    )";
    auto [result, inlined] = runCounting(src, eagerInlineConfig());
    ASSERT_TRUE(result.ok()) << result.bug.toString();
    EXPECT_EQ(inlined, 0u);
    // sum(3, i, 2i, 1) == 3i + 1; total = 3 * (59 * 60 / 2) + 60.
    EXPECT_EQ(result.exitCode, (3 * 1770 + 60) % 126);
}

TEST(InlineTest, OversizedCalleeIsRejectedByBudget)
{
    // The callee's loop body is tiny but the budget is set below any
    // whole-function splice, so the site must fall back to a direct
    // call — and still compute the same value.
    const char *src = R"(
        static int work(int x) {
            int a = x + 1; int b = a * 3; int c = b - x;
            int d = c ^ a; int e = d + b; int f = e * 2;
            int g = f - d; int h = g + c; int i = h ^ e;
            int j = i + f; int k = j - g; int l = k + h;
            return l ^ j;
        }
        int main(void) {
            int s = 0;
            for (int i = 0; i < 80; i++)
                s ^= work(i);
            return s % 126;
        }
    )";
    ToolConfig tight = eagerInlineConfig();
    tight.managed.inlineBudget = 4;
    auto [tight_result, tight_inlined] = runCounting(src, tight);
    ASSERT_TRUE(tight_result.ok()) << tight_result.bug.toString();
    EXPECT_EQ(tight_inlined, 0u);

    auto [roomy_result, roomy_inlined] = runCounting(src, eagerInlineConfig());
    ASSERT_TRUE(roomy_result.ok()) << roomy_result.bug.toString();
    EXPECT_GT(roomy_inlined, 0u);
    EXPECT_EQ(roomy_result.exitCode, tight_result.exitCode);
}

TEST(InlineTest, FunctionPointerMonomorphicAndMegamorphic)
{
    // One site stays monomorphic (inline-cache hit path), the other
    // flips between two targets every iteration (megamorphic fallback).
    const char *src = R"(
        static int twice(int x) { return 2 * x; }
        static int thrice(int x) { return 3 * x; }
        int main(void) {
            int (*mono)(int) = twice;
            int s = 0;
            for (int i = 0; i < 120; i++) {
                int (*poly)(int) = (i % 2 == 0) ? twice : thrice;
                s += mono(i) + poly(i);
            }
            printf("%d\n", s);
            return 0;
        }
    )";
    auto [result, inlined] = runCounting(src, eagerInlineConfig());
    ASSERT_TRUE(result.ok()) << result.bug.toString();
    (void)inlined;
    // mono: 2i each round; poly: 2i on even, 3i on odd rounds.
    // Sum = 2*7140 + 2*3540 + 3*3600 = 32160.
    EXPECT_EQ(result.output, "32160\n");
    EXPECT_EQ(result.output,
              testutil::outputOf(src)); // default (lazy) config agrees
}

TEST(InlineTest, BugInInlinedCalleeIsAttributedToCallee)
{
    const char *src = R"(
        static int buf[4];
        static int poke(int i) { return buf[i]; }
        int main(void) {
            int s = 0;
            for (int i = 0; i < 100; i++)
                s += poke(i % 4);
            return poke(7) + s;
        }
    )";
    // Reference: pure tier-1 interpretation.
    ToolConfig tier1 = ToolConfig::make(ToolKind::safeSulong);
    tier1.managed.enableTier2 = false;
    ExecutionResult reference = runUnderTool(src, tier1);
    ASSERT_EQ(reference.bug.kind, ErrorKind::outOfBounds);
    EXPECT_EQ(reference.bug.function, "poke");

    auto [result, inlined] = runCounting(src, eagerInlineConfig());
    EXPECT_GT(inlined, 0u);
    EXPECT_EQ(result.bug.kind, reference.bug.kind);
    EXPECT_EQ(result.bug.function, reference.bug.function);
    EXPECT_EQ(result.bug.detail, reference.bug.detail);
}

TEST(InlineTest, NestedInlineAttributesInnermostCallee)
{
    // outer -> middle -> inner, all tiny and all spliced; the bug is in
    // inner and must be reported there, not against outer or main.
    const char *src = R"(
        static int arr[2];
        static int inner(int i) { return arr[i]; }
        static int middle(int i) { return inner(i) + 1; }
        static int outer(int i) { return middle(i) + 1; }
        int main(void) {
            int s = 0;
            for (int i = 0; i < 50; i++)
                s += outer(i % 2);
            return outer(9) + s;
        }
    )";
    auto [result, inlined] = runCounting(src, eagerInlineConfig());
    EXPECT_GT(inlined, 0u);
    EXPECT_EQ(result.bug.kind, ErrorKind::outOfBounds);
    EXPECT_EQ(result.bug.function, "inner");
}

TEST(InlineTest, UseAfterFreeInInlinedCalleeStillTraps)
{
    // Temporal bugs must survive both inlining and check elision: the
    // resolution cache pins the object but re-checks liveness on every
    // access, so the freed-object load traps exactly as in tier 1.
    const char *src = R"(
        static int deref(int *p) { return *p; }
        int main(void) {
            int *p = malloc(sizeof(int));
            *p = 41;
            int s = 0;
            for (int i = 0; i < 80; i++)
                s += deref(p);
            free(p);
            return deref(p) + s;
        }
    )";
    ToolConfig tier1 = ToolConfig::make(ToolKind::safeSulong);
    tier1.managed.enableTier2 = false;
    ExecutionResult reference = runUnderTool(src, tier1);
    ASSERT_EQ(reference.bug.kind, ErrorKind::useAfterFree);

    auto [result, inlined] = runCounting(src, eagerInlineConfig());
    (void)inlined;
    EXPECT_EQ(result.bug.kind, reference.bug.kind);
    EXPECT_EQ(result.bug.function, reference.bug.function);
    EXPECT_EQ(result.bug.detail, reference.bug.detail);
}

} // namespace
} // namespace sulong
