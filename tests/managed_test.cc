/**
 * @file
 * Unit tests for the managed object model (the paper's core): bounds and
 * type checks, relaxed access rules, free semantics (Fig. 8), heap
 * typing with mementos, reference counting, and globals.
 */

#include <cstring>
#include <functional>

#include <gtest/gtest.h>

#include "ir/module.h"
#include "managed/globals.h"
#include "managed/heap.h"

namespace sulong
{
namespace
{

Address dummyAddr;

uint64_t
readInt(ManagedObject &obj, unsigned size, int64_t offset)
{
    uint64_t bits = 0;
    Address out;
    obj.read(AccessClass::integer, size, offset, bits, out);
    return bits;
}

void
writeInt(ManagedObject &obj, unsigned size, int64_t offset, uint64_t bits)
{
    obj.write(AccessClass::integer, size, offset, bits, dummyAddr);
}

ErrorKind
caughtKind(const std::function<void()> &body)
{
    try {
        body();
    } catch (const MemoryErrorException &error) {
        return error.report().kind;
    }
    return ErrorKind::none;
}

TEST(PrimitiveArrayTest, ReadWriteRoundTrip)
{
    I32Array arr(StorageKind::stack, 4);
    writeInt(arr, 4, 8, 0xDEADBEEF);
    EXPECT_EQ(readInt(arr, 4, 8), 0xDEADBEEFu);
    EXPECT_EQ(arr.byteSize(), 16);
}

TEST(PrimitiveArrayTest, BoundsOverflow)
{
    I32Array arr(StorageKind::stack, 4);
    EXPECT_EQ(caughtKind([&] { readInt(arr, 4, 16); }),
              ErrorKind::outOfBounds);
    // Partially out-of-bounds counts too.
    EXPECT_EQ(caughtKind([&] { readInt(arr, 4, 13); }),
              ErrorKind::outOfBounds);
}

TEST(PrimitiveArrayTest, BoundsUnderflow)
{
    I64Array arr(StorageKind::global, 2);
    EXPECT_EQ(caughtKind([&] { writeInt(arr, 8, -8, 1); }),
              ErrorKind::outOfBounds);
    try {
        writeInt(arr, 8, -8, 1);
        FAIL();
    } catch (const MemoryErrorException &error) {
        EXPECT_EQ(error.report().direction, BoundsDirection::underflow);
        EXPECT_EQ(error.report().storage, StorageKind::global);
        EXPECT_EQ(error.report().access, AccessKind::write);
    }
}

TEST(PrimitiveArrayTest, RelaxedNarrowAccess)
{
    // Byte access into an I32 array is allowed (Section 3.2 relaxation).
    I32Array arr(StorageKind::stack, 2);
    writeInt(arr, 4, 0, 0x04030201);
    EXPECT_EQ(readInt(arr, 1, 0), 0x01u);
    EXPECT_EQ(readInt(arr, 1, 3), 0x04u);
    writeInt(arr, 1, 1, 0xFF);
    EXPECT_EQ(readInt(arr, 4, 0), 0x0403FF01u);
}

TEST(PrimitiveArrayTest, RelaxedWideAccess)
{
    // 8-byte access spanning two i32 elements.
    I32Array arr(StorageKind::stack, 2);
    writeInt(arr, 8, 0, 0x1111222233334444ull);
    EXPECT_EQ(readInt(arr, 4, 4), 0x11112222u);
}

TEST(PrimitiveArrayTest, FloatBitsInIntArray)
{
    // Storing a double's bits in an I64 array (the paper's example).
    I64Array arr(StorageKind::stack, 1);
    double d = 2.5;
    uint64_t bits = 0;
    std::memcpy(&bits, &d, 8);
    arr.write(AccessClass::floating, 8, 0, bits, dummyAddr);
    uint64_t out = 0;
    Address out_addr;
    arr.read(AccessClass::floating, 8, 0, out, out_addr);
    double back = 0;
    std::memcpy(&back, &out, 8);
    EXPECT_DOUBLE_EQ(back, 2.5);
}

TEST(PrimitiveArrayTest, PointerBitsAreProvenanceFree)
{
    // Reading pointer-class from a primitive array yields a null-pointee
    // Address carrying the raw bits; writing a real pointer is an error.
    I64Array arr(StorageKind::stack, 1);
    writeInt(arr, 8, 0, 1234);
    uint64_t bits = 0;
    Address out;
    arr.read(AccessClass::pointer, 8, 0, bits, out);
    EXPECT_TRUE(out.isNull());
    EXPECT_EQ(out.offset, 1234);

    ObjRef other(new I32Array(StorageKind::heap, 1));
    Address real{other, 0};
    EXPECT_EQ(caughtKind([&] {
        arr.write(AccessClass::pointer, 8, 0, 0, real);
    }), ErrorKind::typeError);
}

TEST(StrictModeTest, MismatchedAccessRejected)
{
    I32Array arr(StorageKind::stack, 2);
    StrictTypeRulesScope strict(true);
    EXPECT_EQ(caughtKind([&] { readInt(arr, 1, 0); }),
              ErrorKind::typeError);
    EXPECT_EQ(caughtKind([&] { readInt(arr, 4, 2); }),
              ErrorKind::typeError); // misaligned
    EXPECT_EQ(readInt(arr, 4, 4), 0u); // exact access still fine
}

TEST(StrictModeTest, ScopeRestores)
{
    EXPECT_FALSE(strictTypeRules());
    {
        StrictTypeRulesScope strict(true);
        EXPECT_TRUE(strictTypeRules());
    }
    EXPECT_FALSE(strictTypeRules());
}

TEST(AddressArrayTest, PointerRoundTrip)
{
    AddressArray arr(StorageKind::stack, 2);
    ObjRef target(new I8Array(StorageKind::heap, 4));
    arr.write(AccessClass::pointer, 8, 8, 0, Address{target, 2});
    uint64_t bits = 0;
    Address out;
    arr.read(AccessClass::pointer, 8, 8, bits, out);
    EXPECT_EQ(out.pointee.get(), target.get());
    EXPECT_EQ(out.offset, 2);
}

TEST(AddressArrayTest, IntegerReadOfRealPointerRejected)
{
    AddressArray arr(StorageKind::stack, 1);
    ObjRef target(new I8Array(StorageKind::heap, 4));
    arr.write(AccessClass::pointer, 8, 0, 0, Address{target, 0});
    EXPECT_EQ(caughtKind([&] { readInt(arr, 8, 0); }),
              ErrorKind::typeError);
}

TEST(AddressArrayTest, IntegerZeroWriteClearsSlot)
{
    AddressArray arr(StorageKind::stack, 1);
    ObjRef target(new I8Array(StorageKind::heap, 4));
    arr.write(AccessClass::pointer, 8, 0, 0, Address{target, 0});
    writeInt(arr, 8, 0, 0); // memset-style NULL
    uint64_t bits = 0;
    Address out;
    arr.read(AccessClass::pointer, 8, 0, bits, out);
    EXPECT_TRUE(out.isNull());
}

TEST(AddressArrayTest, OutOfBounds)
{
    AddressArray arr(StorageKind::mainArgs, 3);
    uint64_t bits = 0;
    Address out;
    EXPECT_EQ(caughtKind([&] {
        arr.read(AccessClass::pointer, 8, 24, bits, out);
    }), ErrorKind::outOfBounds);
}

TEST(StructObjectTest, FieldAccessByOffset)
{
    TypeContext types;
    const Type *s = types.structType("mix", {
        {"c", types.i8()}, {"i", types.i32()}, {"p", types.ptr()},
    });
    StructObject obj(StorageKind::stack, s);
    writeInt(obj, 1, 0, 0x7f);
    writeInt(obj, 4, 4, 0xABCD);
    EXPECT_EQ(readInt(obj, 1, 0), 0x7fu);
    EXPECT_EQ(readInt(obj, 4, 4), 0xABCDu);

    ObjRef target(new I8Array(StorageKind::heap, 1));
    obj.write(AccessClass::pointer, 8, 8, 0, Address{target, 0});
    uint64_t bits = 0;
    Address out;
    obj.read(AccessClass::pointer, 8, 8, bits, out);
    EXPECT_EQ(out.pointee.get(), target.get());
}

TEST(StructObjectTest, PaddingAccessRejected)
{
    TypeContext types;
    const Type *s = types.structType("padded2", {
        {"c", types.i8()}, {"l", types.i64()},
    });
    StructObject obj(StorageKind::stack, s);
    EXPECT_EQ(caughtKind([&] { readInt(obj, 1, 3); }),
              ErrorKind::typeError);
}

TEST(StructObjectTest, BeyondStructIsOutOfBounds)
{
    TypeContext types;
    const Type *s = types.structType("small", {{"i", types.i32()}});
    StructObject obj(StorageKind::heap, s);
    EXPECT_EQ(caughtKind([&] { readInt(obj, 4, 4); }),
              ErrorKind::outOfBounds);
}

TEST(AggregateArrayTest, ElementDelegation)
{
    TypeContext types;
    const Type *s = types.structType("cell", {
        {"a", types.i32()}, {"b", types.i32()},
    });
    const Type *arr_type = types.arrayType(s, 3);
    AggregateArray arr(StorageKind::stack, arr_type);
    writeInt(arr, 4, 8 * 2 + 4, 77); // element 2, field b
    EXPECT_EQ(readInt(arr, 4, 20), 77u);
    EXPECT_EQ(caughtKind([&] { readInt(arr, 4, 24); }),
              ErrorKind::outOfBounds);
}

TEST(FreeSemanticsTest, UseAfterFreeDetected)
{
    TypeContext types;
    ManagedHeap heap(types);
    Address p = heap.allocate(16, types.i32(), nullptr);
    writeInt(*p.pointee, 4, 0, 5);
    heap.deallocate(p);
    EXPECT_EQ(caughtKind([&] { readInt(*p.pointee, 4, 0); }),
              ErrorKind::useAfterFree);
}

TEST(FreeSemanticsTest, DoubleFreeDetected)
{
    TypeContext types;
    ManagedHeap heap(types);
    Address p = heap.allocate(8, types.i8(), nullptr);
    heap.deallocate(p);
    EXPECT_EQ(caughtKind([&] { heap.deallocate(p); }),
              ErrorKind::doubleFree);
}

TEST(FreeSemanticsTest, InteriorPointerFreeIsInvalid)
{
    TypeContext types;
    ManagedHeap heap(types);
    Address p = heap.allocate(8, types.i8(), nullptr);
    EXPECT_EQ(caughtKind([&] { heap.deallocate(p.withOffset(2)); }),
              ErrorKind::invalidFree);
}

TEST(FreeSemanticsTest, NonHeapFreeIsInvalid)
{
    TypeContext types;
    ManagedHeap heap(types);
    Address stack_obj{ObjRef(new I32Array(StorageKind::stack, 1)), 0};
    EXPECT_EQ(caughtKind([&] { heap.deallocate(stack_obj); }),
              ErrorKind::invalidFree);
    Address global_obj{ObjRef(new I32Array(StorageKind::global, 1)), 0};
    EXPECT_EQ(caughtKind([&] { heap.deallocate(global_obj); }),
              ErrorKind::invalidFree);
}

TEST(FreeSemanticsTest, FreeNullIsNoop)
{
    TypeContext types;
    ManagedHeap heap(types);
    heap.deallocate(Address{});
}

TEST(HeapTypingTest, HintedAllocationIsTyped)
{
    TypeContext types;
    ManagedHeap heap(types);
    Address p = heap.allocate(12, types.i32(), nullptr);
    EXPECT_EQ(p.pointee->kind(), ObjectKind::i32Array);
    EXPECT_EQ(p.pointee->byteSize(), 12);
}

TEST(HeapTypingTest, NonMultipleSizeFallsBackToBytes)
{
    TypeContext types;
    ManagedHeap heap(types);
    Address p = heap.allocate(10, types.i32(), nullptr);
    EXPECT_EQ(p.pointee->kind(), ObjectKind::i8Array);
}

TEST(HeapTypingTest, LazyMaterializationWithMemento)
{
    TypeContext types;
    ManagedHeap heap(types);
    const Type *memento = nullptr;
    Address p = heap.allocate(16, nullptr, &memento);
    EXPECT_EQ(memento, nullptr);
    // First access types the object and records the memento.
    writeInt(*p.pointee, 4, 0, 9);
    ASSERT_NE(memento, nullptr);
    EXPECT_EQ(memento->kind(), TypeKind::i32);
    EXPECT_EQ(readInt(*p.pointee, 4, 0), 9u);
    // Bounds are enforced on the materialized payload.
    EXPECT_EQ(caughtKind([&] { readInt(*p.pointee, 4, 16); }),
              ErrorKind::outOfBounds);
}

TEST(HeapTypingTest, ReallocPreservesContentAndFreesOld)
{
    TypeContext types;
    ManagedHeap heap(types);
    Address p = heap.allocate(8, types.i32(), nullptr);
    writeInt(*p.pointee, 4, 0, 0x11);
    writeInt(*p.pointee, 4, 4, 0x22);
    Address q = heap.reallocate(p, 16, nullptr);
    EXPECT_EQ(readInt(*q.pointee, 4, 0), 0x11u);
    EXPECT_EQ(readInt(*q.pointee, 4, 4), 0x22u);
    EXPECT_EQ(q.pointee->byteSize(), 16);
    EXPECT_EQ(caughtKind([&] { readInt(*p.pointee, 4, 0); }),
              ErrorKind::useAfterFree);
}

TEST(HeapTypingTest, ReallocOfFreedIsReported)
{
    TypeContext types;
    ManagedHeap heap(types);
    Address p = heap.allocate(8, types.i8(), nullptr);
    heap.deallocate(p);
    EXPECT_EQ(caughtKind([&] { heap.reallocate(p, 16, nullptr); }),
              ErrorKind::useAfterFree);
}

TEST(RefCountTest, ObjectSurvivesWhileReferenced)
{
    ObjRef a(new I32Array(StorageKind::stack, 1));
    {
        ObjRef b = a;
        Address addr{b, 0};
        writeInt(*addr.pointee, 4, 0, 3);
    }
    EXPECT_EQ(readInt(*a, 4, 0), 3u);
}

TEST(RefCountTest, MoveSemantics)
{
    ObjRef a(new I32Array(StorageKind::stack, 1));
    ManagedObject *raw = a.get();
    ObjRef b = std::move(a);
    EXPECT_EQ(a.get(), nullptr);
    EXPECT_EQ(b.get(), raw);
}

TEST(GlobalStoreTest, MaterializesInitializers)
{
    Module module;
    TypeContext &types = module.types();
    const Type *arr4 = types.arrayType(types.i32(), 4);
    Initializer init;
    init.kind = Initializer::Kind::array;
    init.elems.push_back(Initializer::makeInt(10));
    init.elems.push_back(Initializer::makeInt(20));
    init.elems.push_back(Initializer::makeZero());
    init.elems.push_back(Initializer::makeInt(40));
    GlobalVariable *g = module.addGlobal(arr4, "vals", std::move(init));

    GlobalStore store(module);
    Address addr = store.addressOf(g);
    EXPECT_EQ(readInt(*addr.pointee, 4, 0), 10u);
    EXPECT_EQ(readInt(*addr.pointee, 4, 4), 20u);
    EXPECT_EQ(readInt(*addr.pointee, 4, 8), 0u);
    EXPECT_EQ(readInt(*addr.pointee, 4, 12), 40u);
    EXPECT_EQ(addr.pointee->storage(), StorageKind::global);
}

TEST(GlobalStoreTest, GlobalRefInitializer)
{
    Module module;
    TypeContext &types = module.types();
    GlobalVariable *target =
        module.addGlobal(types.i32(), "t", Initializer::makeInt(5));
    GlobalVariable *ptr = module.addGlobal(
        types.ptr(), "p", Initializer::makeGlobalRef(target, 0));

    GlobalStore store(module);
    uint64_t bits = 0;
    Address out;
    store.addressOf(ptr).pointee->read(AccessClass::pointer, 8, 0, bits,
                                       out);
    EXPECT_EQ(out.pointee.get(), store.addressOf(target).pointee.get());
}

TEST(GlobalStoreTest, ArgvArrayIsNullTerminated)
{
    Module module;
    GlobalStore store(module);
    Address argv = store.makeStringArray({"prog", "arg"});
    EXPECT_EQ(argv.pointee->byteSize(), 3 * 8);
    uint64_t bits = 0;
    Address slot;
    argv.pointee->read(AccessClass::pointer, 8, 16, bits, slot);
    EXPECT_TRUE(slot.isNull());
    argv.pointee->read(AccessClass::pointer, 8, 0, bits, slot);
    ASSERT_FALSE(slot.isNull());
    EXPECT_EQ(slot.pointee->storage(), StorageKind::mainArgs);
    uint64_t c = 0;
    Address dummy;
    slot.pointee->read(AccessClass::integer, 1, 0, c, dummy);
    EXPECT_EQ(c, static_cast<uint64_t>('p'));
}

TEST(VarargsObjectTest, CursorAndOverflow)
{
    std::vector<Address> args;
    args.push_back(Address{ObjRef(new I32Array(StorageKind::stack, 1)), 0});
    VarargsObject va(std::move(args));
    EXPECT_EQ(va.count(), 1u);
    va.next();
    EXPECT_EQ(caughtKind([&] { va.next(); }), ErrorKind::varargs);
}

} // namespace
} // namespace sulong
