/**
 * @file
 * Memcheck-style tool tests: heap-only A-bit coverage, V-bit uninit
 * tracking, quarantine, and the Valgrind-faithful blind spots (stack and
 * global out-of-bounds, libc-string suppression).
 */

#include "test_util.h"

namespace sulong
{
namespace
{

ExecutionResult
runMemcheck(const std::string &src, int opt_level = 0,
            const std::vector<std::string> &args = {},
            const std::string &stdin_data = "",
            MemcheckOptions options = {})
{
    ToolConfig config = ToolConfig::make(ToolKind::memcheck, opt_level);
    config.memcheck = options;
    return runUnderTool(src, config, args, stdin_data);
}

TEST(MemcheckDetectsTest, HeapOverflowRead)
{
    ExecutionResult result = runMemcheck(R"(
int main(void) {
    int *p = malloc(sizeof(int) * 2);
    int v = p[2];
    printf("%d\n", v);
    free(p);
    return 0;
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::outOfBounds);
    EXPECT_EQ(result.bug.storage, StorageKind::heap);
}

TEST(MemcheckDetectsTest, HeapUnderflowWrite)
{
    ExecutionResult result = runMemcheck(R"(
int main(void) {
    char *p = malloc(8);
    p[-1] = 1;
    free(p);
    return 0;
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::outOfBounds);
    EXPECT_EQ(result.bug.access, AccessKind::write);
}

TEST(MemcheckDetectsTest, UseAfterFree)
{
    ExecutionResult result = runMemcheck(R"(
int main(void) {
    int *p = malloc(sizeof(int));
    *p = 3;
    free(p);
    return *p;
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::useAfterFree);
}

TEST(MemcheckDetectsTest, DoubleFreeAndInvalidFree)
{
    EXPECT_EQ(runMemcheck(R"(
int main(void) {
    char *p = malloc(4);
    free(p);
    free(p);
    return 0;
})").bug.kind, ErrorKind::doubleFree);
    EXPECT_EQ(runMemcheck(R"(
int main(void) {
    int x = 0;
    free(&x);
    return 0;
})").bug.kind, ErrorKind::invalidFree);
}

TEST(MemcheckDetectsTest, UninitializedValueBranch)
{
    ExecutionResult result = runMemcheck(R"(
int main(void) {
    int never_set;
    int ok = 0;
    if (never_set > 0)  /* conditional jump on uninitialised value */
        ok = 1;
    return ok;
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::uninitRead);
}

TEST(MemcheckDetectsTest, HeapMemoryStartsUndefined)
{
    // The report fires when the undefined value reaches a branch, not at
    // the load itself (Memcheck semantics).
    ExecutionResult result = runMemcheck(R"(
int main(void) {
    int *p = malloc(sizeof(int) * 2);
    int bad = p[0];
    free(p);
    if (bad > 0)
        return 1;
    return 0;
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::uninitRead);
}

TEST(MemcheckDetectsTest, CallocMemoryIsDefined)
{
    ExecutionResult result = runMemcheck(R"(
int main(void) {
    int *p = calloc(2, sizeof(int));
    int ok = p[0] == 0 && p[1] == 0;
    free(p);
    return ok;
})");
    EXPECT_TRUE(result.ok()) << result.bug.toString();
    EXPECT_EQ(result.exitCode, 1);
}

TEST(MemcheckDetectsTest, StoringDefinedValueClearsUndefined)
{
    ExecutionResult result = runMemcheck(R"(
int main(void) {
    int v;
    v = 5;
    return v == 5 ? 0 : 1;
})");
    EXPECT_TRUE(result.ok()) << result.bug.toString();
}

// --- blind spots (why the paper's Table comparisons look as they do) --

TEST(MemcheckGapsTest, StackOverflowWriteMissed)
{
    ExecutionResult result = runMemcheck(R"(
int main(void) {
    int a[4];
    for (int i = 0; i < 4; i++)
        a[i] = i;
    a[4] = 9; /* stack OOB write: no A-bits for the stack */
    return a[0];
})");
    EXPECT_TRUE(result.ok()) << result.bug.toString();
}

TEST(MemcheckGapsTest, GlobalOverflowMissed)
{
    ExecutionResult result = runMemcheck(R"(
int table[4] = {1, 2, 3, 4};
int spare[4] = {9, 9, 9, 9};
int main(void) {
    printf("%d\n", table[4]);
    return 0;
})");
    EXPECT_TRUE(result.ok()) << result.bug.toString();
}

TEST(MemcheckGapsTest, ArgvOutOfBoundsMissed)
{
    ExecutionResult result = runMemcheck(R"(
int main(int argc, char **argv) {
    printf("%d %s\n", argc, argv[5]);
    return 0;
})");
    EXPECT_TRUE(result.ok()) << result.bug.toString();
}

TEST(MemcheckGapsTest, StackOobReadFlaggedOnlyIndirectly)
{
    // The stack OOB read itself passes; only the *use* of the garbage
    // (here: branching on it) is flagged as an uninitialised value.
    ExecutionResult result = runMemcheck(R"(
int main(void) {
    int a[2] = {1, 2};
    int garbage = a[2]; /* reads the slack gap: not flagged here */
    if (garbage > 0)    /* flagged here */
        return 1;
    return 0;
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::uninitRead);
}

TEST(MemcheckGapsTest, WordWiseStrlenSuppressed)
{
    // The optimized libc strlen branches on partially-undefined words;
    // Valgrind's strlen heuristic suppresses exactly this.
    ExecutionResult result = runMemcheck(R"(
int main(void) {
    char buf[32];
    strcpy(buf, "abc"); /* bytes 4..31 stay undefined */
    return (int)strlen(buf);
})");
    EXPECT_TRUE(result.ok()) << result.bug.toString();
    EXPECT_EQ(result.exitCode, 3);
}

TEST(MemcheckGapsTest, MissingVarargMissed)
{
    // The register save area reads as defined (the AMD64 prologue wrote
    // it), so a missing printf argument is invisible.
    ExecutionResult result = runMemcheck(R"(
int main(void) {
    printf("%s %d\n", "one");
    return 0;
})");
    EXPECT_TRUE(result.ok()) << result.bug.toString();
}

TEST(MemcheckOptionsTest, QuarantineExhaustionMissesUaf)
{
    MemcheckOptions tiny;
    tiny.quarantineBlocks = 1;
    ExecutionResult result = runMemcheck(R"(
int main(void) {
    char *p = malloc(24);
    p[0] = 'x';
    free(p);
    char *a = malloc(40); char *b = malloc(40);
    free(a); free(b); /* push p out of the 1-slot quarantine */
    char *fresh = malloc(24);
    fresh[0] = 'f';
    return p[0] == 'f';
})", 0, {}, "", tiny);
    EXPECT_TRUE(result.ok()) << result.bug.toString();
    EXPECT_EQ(result.exitCode, 1);
}

TEST(MemcheckOptionsTest, LeakCheckFindsDefinitelyLost)
{
    MemcheckOptions options;
    options.detectLeaks = true;
    ExecutionResult result = runMemcheck(R"(
int main(void) {
    char *p = malloc(48);
    p[0] = 1;
    return 0;
})", 0, {}, "", options);
    EXPECT_EQ(result.bug.kind, ErrorKind::memoryLeak);
    EXPECT_NE(result.bug.detail.find("48"), std::string::npos);
}

TEST(MemcheckOptionsTest, UninitTrackingCanBeDisabled)
{
    MemcheckOptions no_vbits;
    no_vbits.trackUninit = false;
    ExecutionResult result = runMemcheck(R"(
int main(void) {
    int v;
    return v > 0 ? 0 : 0;
})", 0, {}, "", no_vbits);
    EXPECT_TRUE(result.ok()) << result.bug.toString();
}

} // namespace
} // namespace sulong
