/**
 * @file
 * Batch-runner tests: parallel evaluation must be bit-identical to
 * serial (results ordered by job index, never completion order), the
 * compile cache must actually share pipeline stages, and failures must
 * surface per job instead of tearing down the batch.
 */

#include <atomic>
#include <chrono>
#include <thread>

#include "test_util.h"

#include "corpus/harness.h"
#include "support/fault.h"
#include "tools/batch_runner.h"

namespace sulong
{
namespace
{

bool
sameResult(const ExecutionResult &a, const ExecutionResult &b)
{
    return a.exitCode == b.exitCode && a.output == b.output &&
           a.bug.kind == b.bug.kind && a.bug.access == b.bug.access &&
           a.bug.storage == b.bug.storage &&
           a.bug.direction == b.bug.direction &&
           a.bug.detail == b.bug.detail && a.termination == b.termination &&
           a.terminationDetail == b.terminationDetail;
}

std::vector<BatchJob>
corpusJobs(size_t max_entries)
{
    const auto &corpus = bugCorpus();
    std::vector<BatchJob> jobs;
    for (size_t i = 0; i < corpus.size() && i < max_entries; i++) {
        for (const ToolConfig &tool : evaluationToolMatrix()) {
            jobs.push_back(BatchJob::make(corpus[i].source, tool,
                                          corpus[i].args,
                                          corpus[i].stdinData));
        }
    }
    return jobs;
}

TEST(BatchRunnerTest, EightWorkersMatchSerial)
{
    std::vector<BatchJob> jobs = corpusJobs(12);

    BatchOptions serial;
    serial.jobs = 1;
    BatchReport reference = runBatch(jobs, serial);

    BatchOptions parallel;
    parallel.jobs = 8;
    BatchReport report = runBatch(jobs, parallel);

    ASSERT_EQ(reference.results.size(), jobs.size());
    ASSERT_EQ(report.results.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); i++) {
        EXPECT_TRUE(sameResult(reference.results[i], report.results[i]))
            << "job " << i << " diverged: "
            << reference.results[i].bug.toString() << " vs "
            << report.results[i].bug.toString();
    }
}

TEST(BatchRunnerTest, MatrixOverloadMatchesSerialHarness)
{
    const auto &corpus = bugCorpus();
    std::vector<CorpusEntry> entries(corpus.begin(),
                                     corpus.begin() + 10);
    auto tools = evaluationToolMatrix();

    std::vector<MatrixRow> reference = runDetectionMatrix(entries, tools);

    BatchOptions options;
    options.jobs = 8;
    CompileCacheStats stats;
    std::vector<MatrixRow> rows =
        runDetectionMatrix(entries, tools, options, &stats);

    ASSERT_EQ(rows.size(), reference.size());
    for (size_t r = 0; r < rows.size(); r++) {
        EXPECT_EQ(rows[r].tool, reference[r].tool);
        EXPECT_EQ(rows[r].directCount, reference[r].directCount);
        EXPECT_EQ(rows[r].indirectCount, reference[r].indirectCount);
        EXPECT_EQ(rows[r].errorCount, reference[r].errorCount);
        ASSERT_EQ(rows[r].outcomes.size(), reference[r].outcomes.size());
        for (size_t i = 0; i < rows[r].outcomes.size(); i++) {
            EXPECT_EQ(rows[r].outcomes[i].detected,
                      reference[r].outcomes[i].detected);
            EXPECT_EQ(rows[r].outcomes[i].indirect,
                      reference[r].outcomes[i].indirect);
            EXPECT_EQ(rows[r].outcomes[i].error,
                      reference[r].outcomes[i].error);
        }
    }
    // 5 tools map onto 5 pipeline stages per entry (3 plain + 2 ASan);
    // everything beyond that must be a hit.
    EXPECT_GT(stats.hits, 0u);
}

TEST(BatchRunnerTest, CacheSharesStagesAcrossTools)
{
    // ASan -O0, Memcheck -O0 and Clang -O0 share one front-end stage.
    std::string src = "int main(void) { return 41 + 1; }";
    std::vector<BatchJob> jobs = {
        BatchJob::make(src, ToolConfig::make(ToolKind::clang, 0)),
        BatchJob::make(src, ToolConfig::make(ToolKind::memcheck, 0)),
        BatchJob::make(src, ToolConfig::make(ToolKind::asan, 0)),
    };
    BatchOptions options;
    options.jobs = 1;
    BatchReport report = runBatch(jobs, options);
    for (const ExecutionResult &result : report.results)
        EXPECT_EQ(result.exitCode, 42);
    // clang misses, memcheck hits clang's stage; asan misses its
    // instrumented stage but hits the shared plain stage underneath.
    EXPECT_EQ(report.cacheStats.misses, 2u);
    EXPECT_EQ(report.cacheStats.hits, 2u);
}

TEST(BatchRunnerTest, CachedAndUncachedResultsAgree)
{
    std::vector<BatchJob> jobs = corpusJobs(6);

    BatchOptions cached;
    cached.jobs = 4;
    BatchReport a = runBatch(jobs, cached);

    BatchOptions uncached;
    uncached.jobs = 4;
    uncached.useCompileCache = false;
    BatchReport b = runBatch(jobs, uncached);

    ASSERT_EQ(a.results.size(), b.results.size());
    for (size_t i = 0; i < jobs.size(); i++)
        EXPECT_TRUE(sameResult(a.results[i], b.results[i])) << "job " << i;
    EXPECT_EQ(b.cacheStats.hits + b.cacheStats.misses, 0u);
}

TEST(BatchRunnerTest, CompileErrorsStayPerJob)
{
    std::vector<BatchJob> jobs = {
        BatchJob::make("int main(void) { return 0; }",
                       ToolConfig::make(ToolKind::safeSulong)),
        BatchJob::make("int main(void) { syntax error }",
                       ToolConfig::make(ToolKind::safeSulong)),
        BatchJob::make("int main(void) { return 3; }",
                       ToolConfig::make(ToolKind::safeSulong)),
    };
    BatchOptions options;
    options.jobs = 2;
    BatchReport report = runBatch(jobs, options);
    ASSERT_EQ(report.results.size(), 3u);
    EXPECT_EQ(report.results[0].exitCode, 0);
    EXPECT_EQ(report.results[1].bug.kind, ErrorKind::engineError);
    EXPECT_EQ(report.results[2].exitCode, 3);
}

TEST(GuardedJobTest, RetryExhaustionReportsLastTerminationAndAttempts)
{
    FaultInjector faults;
    FaultInjector::Rule rule;
    rule.site = "batch.job/0";
    rule.action = FaultInjector::Action::hostException;
    faults.addRule(rule);

    BatchJob job = BatchJob::make("int main(void) { return 0; }",
                                  ToolConfig::make(ToolKind::safeSulong));
    GuardedJobOptions options;
    options.retries = 2;
    options.retryBackoffMs = 0;
    options.faults = &faults;
    JobWatchdog watchdog(0);
    BatchReport::JobStats stats;
    std::atomic<bool> drain{false};
    ExecutionResult result =
        runGuardedJob(job, 0, nullptr, options, drain, watchdog, stats);

    EXPECT_EQ(stats.attempts, 3u); // 1 + retries, all spent
    EXPECT_EQ(stats.termination, TerminationKind::hostFault);
    EXPECT_EQ(result.termination, TerminationKind::hostFault);
    EXPECT_NE(result.terminationDetail.find("injected host fault"),
              std::string::npos)
        << result.terminationDetail;
}

TEST(GuardedJobTest, TransientFaultRecoversWithinRetryBudget)
{
    FaultInjector faults;
    FaultInjector::Rule rule;
    rule.site = "batch.job/0";
    rule.action = FaultInjector::Action::hostException;
    rule.maxFirings = 2; // attempts 1 and 2 fault, attempt 3 succeeds
    faults.addRule(rule);

    BatchJob job = BatchJob::make("int main(void) { return 9; }",
                                  ToolConfig::make(ToolKind::safeSulong));
    GuardedJobOptions options;
    options.retries = 3;
    options.retryBackoffMs = 0;
    options.faults = &faults;
    JobWatchdog watchdog(0);
    BatchReport::JobStats stats;
    std::atomic<bool> drain{false};
    ExecutionResult result =
        runGuardedJob(job, 0, nullptr, options, drain, watchdog, stats);

    EXPECT_EQ(stats.attempts, 3u);
    EXPECT_EQ(stats.termination, TerminationKind::normal);
    EXPECT_EQ(result.exitCode, 9);
}

TEST(GuardedJobTest, DrainBeforeStartIsCancelledWithZeroAttempts)
{
    BatchJob job = BatchJob::make("int main(void) { return 0; }",
                                  ToolConfig::make(ToolKind::safeSulong));
    JobWatchdog watchdog(0);
    BatchReport::JobStats stats;
    std::atomic<bool> drain{true};
    ExecutionResult result = runGuardedJob(job, 0, nullptr, {}, drain,
                                           watchdog, stats);
    EXPECT_EQ(stats.attempts, 0u);
    EXPECT_EQ(result.termination, TerminationKind::cancelled);
}

TEST(GuardedJobTest, DrainBetweenRetriesKeepsTheHostFaultOutcome)
{
    // Regression: a drain firing between retry attempts used to burn
    // one more (immediately-cancelled) attempt, overwriting the real
    // hostFault termination. Now the loop breaks before attempt 3.
    FaultInjector faults;
    FaultInjector::Rule rule;
    rule.site = "batch.job/0";
    rule.action = FaultInjector::Action::hostException;
    faults.addRule(rule);

    BatchJob job = BatchJob::make("int main(void) { return 0; }",
                                  ToolConfig::make(ToolKind::safeSulong));
    GuardedJobOptions options;
    options.retries = 5;
    options.retryBackoffMs = 600; // attempt 2 starts ~600ms in
    options.faults = &faults;
    JobWatchdog watchdog(0);
    BatchReport::JobStats stats;
    std::atomic<bool> drain{false};

    // Flip the drain inside attempt 1's backoff window: wait for the
    // first fault-site visit (attempt 1 has faulted and begun its
    // sleep), then set the flag well before attempt 2's 600ms mark.
    std::thread flipper([&] {
        while (faults.visits("batch.job/0") == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        drain.store(true);
        watchdog.cancelAll(true); // mirror the service's hard drain
    });
    ExecutionResult result =
        runGuardedJob(job, 0, nullptr, options, drain, watchdog, stats);
    flipper.join();

    // The outcome of the last real attempt survives the drain: never
    // cancelled, and no attempt was spent after the drain fired.
    EXPECT_EQ(result.termination, TerminationKind::hostFault);
    EXPECT_EQ(stats.termination, TerminationKind::hostFault);
    EXPECT_GE(stats.attempts, 1u);
    EXPECT_LT(stats.attempts, 1u + options.retries);
}

TEST(GuardedJobTest, StickyCancelAllCancelsLaterWatches)
{
    JobWatchdog watchdog(0);
    watchdog.cancelAll(/*sticky=*/true);
    CancellationToken token;
    watchdog.watch(1, token);
    EXPECT_TRUE(token.cancelled());
    watchdog.release(1);

    JobWatchdog fresh(0);
    CancellationToken other;
    fresh.cancelAll(/*sticky=*/false);
    fresh.watch(2, other);
    EXPECT_FALSE(other.cancelled()); // non-sticky only hits in-flight
    fresh.release(2);
}

TEST(BatchRunnerTest, ExternalCacheIsReusedAcrossBatches)
{
    CompileCache cache;
    std::vector<BatchJob> jobs = {BatchJob::make(
        "int main(void) { return 7; }",
        ToolConfig::make(ToolKind::safeSulong))};

    BatchOptions options;
    options.jobs = 1;
    options.cache = &cache;
    runBatch(jobs, options);
    BatchReport second = runBatch(jobs, options);
    EXPECT_EQ(second.results[0].exitCode, 7);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
}

} // namespace
} // namespace sulong
