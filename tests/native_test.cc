/**
 * @file
 * Native execution model tests: the flat memory (segments, allocator
 * reuse, argv/envp layout, traps) and the unchecked engine's silent-UB
 * behaviour that the paper's P1/P3 discussion relies on.
 */

#include "test_util.h"

#include "native/memory.h"

namespace sulong
{
namespace
{

ExecutionResult
runNative(const std::string &src, int opt_level = 0,
          const std::vector<std::string> &args = {},
          const std::string &stdin_data = "")
{
    return runUnderTool(src, ToolConfig::make(ToolKind::clang, opt_level),
                        args, stdin_data);
}

TEST(NativeMemoryTest, SegmentsResolveAndTrap)
{
    NativeMemory mem;
    // Stack is mapped.
    mem.writeInt(NativeLayout::stackTop - 8, 8, 0x1122);
    EXPECT_EQ(mem.readInt(NativeLayout::stackTop - 8, 8), 0x1122u);
    // NULL and wild addresses trap.
    EXPECT_THROW(mem.readInt(0, 4), NativeTrap);
    EXPECT_THROW(mem.readInt(0x9999'9999'9999ull, 1), NativeTrap);
}

TEST(NativeMemoryTest, HeapAllocatorReusesLifo)
{
    NativeMemory mem;
    uint64_t a = mem.heapAlloc(32);
    uint64_t b = mem.heapAlloc(32);
    EXPECT_NE(a, b);
    mem.heapFree(a);
    mem.heapFree(b);
    // Most recently freed comes back first (rapid reuse).
    EXPECT_EQ(mem.heapAlloc(32), b);
    EXPECT_EQ(mem.heapAlloc(32), a);
}

TEST(NativeMemoryTest, FreeOfUnknownIsIgnored)
{
    NativeMemory mem;
    EXPECT_EQ(mem.heapFree(0x12345), 0u);
    uint64_t a = mem.heapAlloc(16);
    EXPECT_GT(mem.heapFree(a), 0u);
    EXPECT_EQ(mem.heapFree(a), 0u); // double free: silently nothing
}

TEST(NativeMemoryTest, ReallocGrowsAndCopies)
{
    NativeMemory mem;
    uint64_t a = mem.heapAlloc(8);
    mem.writeInt(a, 8, 0xAABB);
    uint64_t b = mem.heapRealloc(a, 64);
    EXPECT_EQ(mem.readInt(b, 8), 0xAABBu);
}

TEST(NativeMemoryTest, StackAllocGrowsDown)
{
    NativeMemory mem;
    uint64_t sp0 = mem.stackPointer();
    uint64_t a = mem.stackAlloc(16);
    uint64_t b = mem.stackAlloc(16);
    EXPECT_LT(a, sp0);
    EXPECT_LT(b, a);
}

TEST(NativeMemoryTest, ArgvEnvpAdjacent)
{
    NativeMemory mem;
    auto [argv, envp] = mem.buildMainArgs({"prog"}, {"A=1", "B=2"});
    // argv[0] is a string, argv[1] is NULL, and envp starts right after.
    EXPECT_NE(mem.readInt(argv, 8), 0u);
    EXPECT_EQ(mem.readInt(argv + 8, 8), 0u);
    EXPECT_EQ(envp, argv + 16);
    // Reading argv[2] silently yields envp[0] — the Fig. 10 leak.
    uint64_t leaked = mem.readInt(argv + 16, 8);
    EXPECT_EQ(mem.readCString(leaked), "A=1");
}

TEST(NativeMemoryTest, GlobalLayoutAppliesInitializers)
{
    Module module;
    module.addGlobal(module.types().i32(), "a", Initializer::makeInt(7));
    module.addGlobal(module.types().arrayType(module.types().i8(), 4),
                     "s", Initializer::makeBytes(std::string("hi\0", 4)));
    NativeMemory mem;
    auto addrs = mem.layoutGlobals(module, 0);
    ASSERT_EQ(addrs.size(), 2u);
    EXPECT_EQ(mem.readInt(addrs[0], 4), 7u);
    EXPECT_EQ(mem.readCString(addrs[1]), "hi");
}

TEST(NativeMemoryTest, FunctionAddressTagging)
{
    EXPECT_TRUE(NativeMemory::isFunctionAddress(
        NativeMemory::functionAddress(3)));
    EXPECT_EQ(NativeMemory::functionId(NativeMemory::functionAddress(3)),
              3u);
    EXPECT_FALSE(NativeMemory::isFunctionAddress(0x1000));
}

// --- silent undefined behaviour (what makes native the wrong model) ----

TEST(NativeSilentUBTest, StackOverflowHitsNeighbor)
{
    // Writing one past `low` lands in some other stack slot; the program
    // keeps running and exits normally.
    ExecutionResult result = runNative(R"(
int main(void) {
    int low[2] = {1, 2};
    low[2] = 99; /* silently lands somewhere on the stack */
    return low[0];
})");
    EXPECT_TRUE(result.ok()) << result.bug.toString();
    EXPECT_EQ(result.exitCode, 1);
}

TEST(NativeSilentUBTest, UseAfterFreeReadsReusedBlock)
{
    ExecutionResult result = runNative(R"(
int main(void) {
    int *old = malloc(sizeof(int) * 4);
    old[0] = 111;
    free(old);
    int *fresh = malloc(sizeof(int) * 4); /* same block, reused */
    fresh[0] = 222;
    return old[0] == 222; /* dangling read sees the new data */
})");
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.exitCode, 1);
}

TEST(NativeSilentUBTest, GlobalOverflowReadsNeighborGlobal)
{
    // Use a run-time index so the residual -O0 folding cannot remove the
    // access (constant OOB indices fold away, Fig. 13).
    ExecutionResult result = runNative(R"(
int first[2] = {1, 2};
int second[2] = {30, 40};
int main(int argc, char **argv) {
    return first[argc + 1]; /* index 2: lands in `second` with gap 0 */
})");
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.exitCode, 30);
}

TEST(NativeSilentUBTest, ArgvOverflowLeaksEnvironment)
{
    ExecutionResult result = runNative(R"(
int main(int argc, char **argv) {
    printf("%s\n", argv[argc + 1]); /* first env var */
    return 0;
})");
    EXPECT_TRUE(result.ok());
    EXPECT_NE(result.output.find("HOME="), std::string::npos);
}

TEST(NativeSilentUBTest, DoubleFreeSilent)
{
    ExecutionResult result = runNative(R"(
int main(void) {
    char *p = malloc(4);
    free(p);
    free(p);
    return 0;
})");
    EXPECT_TRUE(result.ok());
}

TEST(NativeEngineTest, NullDerefTraps)
{
    ExecutionResult result = runNative(R"(
int main(void) {
    int *p = 0;
    return *p;
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::nullDeref);
}

TEST(NativeEngineTest, WildPointerSegfaults)
{
    ExecutionResult result = runNative(R"(
int main(void) {
    int *p = (int *)0x500;
    return *p;
})");
    // Below the first segment but past the null page boundary logic:
    // anything unmapped traps; small addresses read as a null deref.
    EXPECT_TRUE(result.bug.kind == ErrorKind::segfault ||
                result.bug.kind == ErrorKind::nullDeref);
}

TEST(NativeEngineTest, BadFunctionPointerTraps)
{
    ExecutionResult result = runNative(R"(
int main(void) {
    int (*fp)(void) = (int (*)(void))0x1234;
    return fp();
})");
    EXPECT_EQ(result.bug.kind, ErrorKind::segfault);
}

TEST(NativeEngineTest, OptimizedStrlenReadsPastNulHarmlessly)
{
    // The word-wise strlen of the native libc reads beyond the
    // terminator; page slack makes that silent, like on real hardware.
    ExecutionResult result = runNative(R"(
int main(void) {
    char *s = malloc(6);
    strcpy(s, "hello");
    int n = (int)strlen(s);
    free(s);
    return n;
})");
    EXPECT_TRUE(result.ok()) << result.bug.toString();
    EXPECT_EQ(result.exitCode, 5);
}

TEST(NativeEngineTest, StepLimitWorks)
{
    PreparedProgram prepared = prepareProgram(
        "int main(void) { while (1) { } }",
        ToolConfig::make(ToolKind::clang, 0));
    ASSERT_TRUE(prepared.ok());
    prepared.engine->limits().maxSteps = 50000;
    ExecutionResult result = prepared.run();
    EXPECT_EQ(result.bug.kind, ErrorKind::none);
    EXPECT_EQ(result.termination, TerminationKind::stepLimit);
}

} // namespace
} // namespace sulong
