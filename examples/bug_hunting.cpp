/**
 * @file
 * Bug hunting: run a C file under the whole tool matrix and compare what
 * each tool reports — the Section 4.1 workflow as a small CLI.
 *
 * Usage:
 *   bug_hunting                 # run a built-in demo program
 *   bug_hunting file.c [args]   # analyze your own mini-C program
 *
 * Flags:
 *   --analyze        also run the static analyzer before the tool matrix
 *   --analyze-only   static analysis only; exit 2 on a definite finding
 *   --no-refute      report raw abstract findings (skip the replay)
 *   --analyze-libc   analyze the linked libc functions too
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "tools/driver.h"

namespace
{

const char *DEMO = R"(
/* A tiny "config parser" with two planted bugs: an unterminated
 * delimiter handed to strtok (Fig. 11 style) and a use-after-free. */
#include <string.h>
#include <stdlib.h>

static char *parse_key(char *line) {
    char delim[1];
    delim[0] = '=';             /* missing NUL terminator */
    return strtok(line, delim);
}

int main(void) {
    char line[32];
    strcpy(line, "mode=fast");
    char *key = parse_key(line);
    printf("key: %s\n", key);
    return 0;
}
)";

} // namespace

int
main(int argc, char **argv)
{
    using namespace sulong;

    bool analyze_only = hasFlag(argc, argv, "analyze-only");
    bool analyze = analyze_only || hasFlag(argc, argv, "analyze");
    AnalysisOptions analysis_options = parseAnalysisFlags(argc, argv);

    std::string source = DEMO;
    std::vector<std::string> guest_args;
    const char *input_file = nullptr;
    for (int i = 1; i < argc; i++) {
        if (std::strncmp(argv[i], "--", 2) == 0)
            continue;
        if (input_file == nullptr)
            input_file = argv[i];
        else
            guest_args.push_back(argv[i]);
    }
    if (input_file != nullptr) {
        std::ifstream file(input_file);
        if (!file) {
            std::printf("cannot open %s\n", input_file);
            return 1;
        }
        std::ostringstream buf;
        buf << file.rdbuf();
        source = buf.str();
    } else {
        std::printf("(no input file given — analyzing the built-in demo)\n\n");
    }

    if (analyze) {
        AnalysisReport report =
            analyzeSource(source, analysis_options, guest_args);
        std::printf("static analysis:\n%s\n", report.toString().c_str());
        if (analyze_only)
            return report.definiteCount() > 0 ? 2 : 0;
        std::printf("\n");
    }

    const ToolConfig tools[] = {
        ToolConfig::make(ToolKind::safeSulong),
        ToolConfig::make(ToolKind::clang, 0),
        ToolConfig::make(ToolKind::clang, 3),
        ToolConfig::make(ToolKind::asan, 0),
        ToolConfig::make(ToolKind::asan, 3),
        ToolConfig::make(ToolKind::memcheck, 0),
        ToolConfig::make(ToolKind::memcheck, 3),
    };

    std::printf("%-13s %-8s %s\n", "tool", "exit", "report");
    for (const ToolConfig &config : tools) {
        ExecutionResult result = runUnderTool(source, config, guest_args);
        std::printf("%-13s %-8d %s\n", config.toString().c_str(),
                    result.exitCode, result.bug.toString().c_str());
    }

    std::printf("\nstdout under Safe Sulong:\n");
    ExecutionResult managed = runUnderTool(
        source, ToolConfig::make(ToolKind::safeSulong), guest_args);
    std::printf("%s", managed.output.c_str());
    return 0;
}
