/**
 * @file
 * Quickstart: compile a C program and run it under Safe Sulong.
 *
 * Demonstrates the minimal public API: prepareProgram() with a tool
 * configuration, run(), and the structured BugReport you get back when
 * the managed checks catch a memory error.
 */

#include <cstdio>

#include "tools/driver.h"

int
main()
{
    using namespace sulong;

    // An off-by-one bug a native run would silently shrug off.
    const char *program = R"(
#include <stdio.h>

int main(void) {
    int squares[10];
    for (int i = 1; i <= 10; i++)      /* writes squares[10]! */
        squares[i] = i * i;
    printf("3^2 = %d\n", squares[3]);
    return 0;
}
)";

    // 1. Compile (links the safe libc) and bind the managed engine.
    PreparedProgram prepared =
        prepareProgram(program, ToolConfig::make(ToolKind::safeSulong));
    if (!prepared.ok()) {
        std::printf("compile error:\n%s\n", prepared.compileErrors.c_str());
        return 1;
    }

    // 2. Execute. Bugs never crash the host; they come back as data.
    ExecutionResult result = prepared.run();

    if (result.ok()) {
        std::printf("program finished cleanly (exit %d)\n%s",
                    result.exitCode, result.output.c_str());
        return 0;
    }

    // 3. Inspect the structured report.
    std::printf("Safe Sulong caught a bug:\n");
    std::printf("  kind:      %s\n", errorKindName(result.bug.kind));
    std::printf("  access:    %s\n", accessKindName(result.bug.access));
    std::printf("  storage:   %s\n", storageKindName(result.bug.storage));
    std::printf("  function:  %s\n", result.bug.function.c_str());
    std::printf("  detail:    %s\n", result.bug.detail.c_str());
    std::printf("\nFor comparison, plain native execution says:\n");
    ExecutionResult native = runUnderTool(
        program, ToolConfig::make(ToolKind::clang, 0));
    std::printf("  %s (exit %d) — the corruption stayed silent\n",
                native.ok() ? "no error" : native.bug.toString().c_str(),
                native.exitCode);
    return 0;
}
