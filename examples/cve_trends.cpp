/**
 * @file
 * The Section 2.1 motivation study as an example: classify a
 * vulnerability database by keyword search and print the per-year
 * category trends (Figs. 1 and 2), plus a tiny ASCII sparkline.
 */

#include <cstdio>

#include "study/classifier.h"

namespace
{

void
sparkline(const char *label, const std::vector<sulong::YearlyCounts> &counts,
          unsigned sulong::YearlyCounts::*field)
{
    unsigned max = 1;
    for (const auto &c : counts)
        max = std::max(max, c.*field);
    std::printf("  %-10s", label);
    for (const auto &c : counts) {
        int bar = static_cast<int>(8.0 * (c.*field) / max + 0.5);
        static const char *levels[] = {" ", ".", ":", "-", "=", "+",
                                       "*", "#", "#"};
        std::printf(" %s%-4u", levels[bar], c.*field);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace sulong;
    auto records = synthesizeVulnDatabase();

    unsigned classified = 0;
    for (const auto &record : records) {
        if (classifyRecord(record) != VulnCategory::unrelated)
            classified++;
    }
    std::printf("%zu records, %u are memory errors\n\n", records.size(),
                classified);

    auto vulns = countByYear(records, false);
    auto exploits = countByYear(records, true);

    std::printf("%s\n",
                formatCounts(vulns, "Fig. 1: vulnerabilities").c_str());
    std::printf("%s\n", formatCounts(exploits, "Fig. 2: exploits").c_str());

    std::printf("Trend (2012 -> 2017):\n");
    sparkline("spatial", vulns, &YearlyCounts::spatial);
    sparkline("temporal", vulns, &YearlyCounts::temporal);
    sparkline("null", vulns, &YearlyCounts::nullDeref);
    sparkline("other", vulns, &YearlyCounts::other);
    std::printf("\nSpatial errors (the bugs Safe Sulong targets first) are\n"
                "the largest and fastest-growing category — the paper's\n"
                "motivation for exact out-of-bounds detection.\n");
    return 0;
}
