/**
 * @file
 * Tiered execution in action: run a hot workload repeatedly on one
 * ManagedEngine instance and watch per-run times drop as functions move
 * from the tier-1 interpreter to tier-2 "compiled" code — the Fig. 15
 * warm-up effect at example scale.
 */

#include <chrono>
#include <cstdio>

#include "tools/benchmark_programs.h"
#include "tools/driver.h"

int
main()
{
    using namespace sulong;
    using Clock = std::chrono::steady_clock;

    const BenchmarkProgram *program = findBenchmark("fannkuchredux");

    ToolConfig config = ToolConfig::make(ToolKind::safeSulong);
    config.managed.persistState = true;     // keep tier state across runs
    config.managed.compileThreshold = 3;    // compile after 3 invocations
    config.managed.compileLatencyNsPerInst = 20000; // visible pauses

    PreparedProgram prepared = prepareProgram(program->source, config);
    if (!prepared.ok()) {
        std::printf("compile failed:\n%s\n", prepared.compileErrors.c_str());
        return 1;
    }
    auto *engine = dynamic_cast<ManagedEngine *>(prepared.engine.get());

    std::printf("fannkuchredux(7), one line per in-process run:\n\n");
    unsigned compiled_before = 0;
    for (int run = 1; run <= 12; run++) {
        auto t0 = Clock::now();
        ExecutionResult result = prepared.run(program->args);
        double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
        if (!result.ok()) {
            std::printf("run failed: %s\n", result.bug.toString().c_str());
            return 1;
        }
        unsigned compiled_now = engine->tier2Functions();
        std::printf("  run %2d: %8.2f ms   tier-2 functions: %u%s\n", run,
                    ms, compiled_now,
                    compiled_now > compiled_before
                        ? "   <- compiled this run" : "");
        compiled_before = compiled_now;
    }

    std::printf("\ncompile events:\n");
    for (const CompileEvent &event : engine->compileEvents()) {
        std::printf("  %-20s at step %llu\n", event.function.c_str(),
                    static_cast<unsigned long long>(event.atStep));
    }
    std::printf("\nLike Graal in the paper, tier-2 optimizes under safe\n"
                "semantics: re-run any corpus program here and the bug is\n"
                "still caught after compilation.\n");
    return 0;
}
